(* The obstruction-free arm: contention-manager decision semantics, the
   ofree-vs-dstm differential (random workloads x fault plans, streaming
   and offline checkers agreeing on every run), DPOR engine bit-identity
   for every CM variant, and crash-survival — ofree steals through a
   crashed owner where the lock-based acquire blocks, with the
   Greedy/Timestamp starvation weakness pinned as a fact rather than
   papered over. *)

open Ptm_machine
open Ptm_core

let of_q t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Contention-manager decision semantics                               *)
(* ------------------------------------------------------------------ *)

let mk_cm kind = Cm.create (Machine.create ~nprocs:3 ()) kind

let dec = Alcotest.testable (fun ppf d ->
    Fmt.string ppf
      (match d with
      | Cm.Steal -> "Steal"
      | Cm.Wait -> "Wait"
      | Cm.Self_abort -> "Self_abort"))
    ( = )

let test_cm_aggressive () =
  let d = mk_cm Cm.Aggressive in
  List.iter
    (fun waited ->
      Alcotest.check dec "always steals" Cm.Steal
        (Cm.decide d ~pid:0 ~owner:1 ~waited))
    [ 0; 1; 100 ]

let test_cm_polite () =
  let d = mk_cm Cm.Polite in
  for waited = 0 to 3 do
    Alcotest.check dec "spins while patient" Cm.Wait
      (Cm.decide d ~pid:0 ~owner:1 ~waited)
  done;
  Alcotest.check dec "patience exhausted: steals" Cm.Steal
    (Cm.decide d ~pid:0 ~owner:1 ~waited:4)

let test_cm_karma () =
  let d = mk_cm Cm.Karma in
  (* equal karma (both 0): steal immediately *)
  Alcotest.check dec "equal karma steals" Cm.Steal
    (Cm.decide d ~pid:0 ~owner:1 ~waited:0);
  (* the owner has opened three objects: the poorer transaction waits,
     but each wait accrues karma, so the fourth look steals — every
     waiter eventually gets through (that is what keeps Karma
     obstruction-free even against a crashed rich owner) *)
  for _ = 1 to 3 do Cm.on_open d ~pid:1 done;
  for look = 1 to 3 do
    Alcotest.check dec
      (Printf.sprintf "poorer waits (look %d)" look)
      Cm.Wait
      (Cm.decide d ~pid:0 ~owner:1 ~waited:(look - 1))
  done;
  Alcotest.check dec "accrued karma steals" Cm.Steal
    (Cm.decide d ~pid:0 ~owner:1 ~waited:3);
  (* commit resets the winner's karma *)
  Cm.on_commit d ~pid:1;
  Alcotest.check dec "reset owner is poor again" Cm.Steal
    (Cm.decide d ~pid:2 ~owner:1 ~waited:0)

let test_cm_timestamp () =
  let d = mk_cm Cm.Timestamp in
  (* p0 hits the first conflict and draws the oldest timestamp; the
     never-conflicted owner it is looking at counts as younger *)
  Alcotest.check dec "elder vs unborn owner: steals" Cm.Steal
    (Cm.decide d ~pid:0 ~owner:2 ~waited:0);
  (* p1 draws a younger stamp: it must wait for the elder... *)
  for waited = 0 to 7 do
    Alcotest.check dec "younger waits" Cm.Wait
      (Cm.decide d ~pid:1 ~owner:0 ~waited)
  done;
  (* ...and past its patience it aborts itself, never the elder (Greedy:
     the stamp is kept across the retry, so against a crashed elder this
     loops — the starvation test below pins that down) *)
  Alcotest.check dec "younger gives up on itself" Cm.Self_abort
    (Cm.decide d ~pid:1 ~owner:0 ~waited:8);
  (* the elder steals from the younger without waiting *)
  Alcotest.check dec "elder steals" Cm.Steal
    (Cm.decide d ~pid:0 ~owner:1 ~waited:0);
  (* commit re-births: the committed elder's next transaction is younger
     than the still-running p1 *)
  Cm.on_commit d ~pid:0;
  Alcotest.check dec "re-born owner counts as younger" Cm.Steal
    (Cm.decide d ~pid:1 ~owner:0 ~waited:0)

(* ------------------------------------------------------------------ *)
(* Crash-survival: steal from the corpse                               *)
(* ------------------------------------------------------------------ *)

(* Two processes, one object, two write transactions each: every crash
   placement of p0 leaves at most a corpse-owned header for p1 to steal
   through. A lock-based eager-acquire TM (dstm) blocks or aborts
   forever on the same plans. *)
let duel_workload =
  {
    Workload.nobjs = 1;
    procs =
      Array.init 2 (fun pid ->
          [ [ Workload.W (0, pid + 1) ]; [ Workload.R 0; Workload.W (0, 9) ] ]);
  }

let p1_commits o =
  List.length
    (List.filter
       (fun (t : History.txr) ->
         t.History.pid = 1 && t.History.status = History.Committed)
       o.Runner.history.History.txns)

let duel tm ~seed ~at =
  Runner.run tm ~retries:50
    ~faults:[ Fault.crash ~pid:0 ~at ]
    ~max_steps:20_000 ~livelock_window:64
    ~schedule:(Runner.Random_sched seed) duel_workload

let test_steal_from_corpse () =
  List.iter
    (fun (module T : Tm_intf.S) ->
      for at = 0 to 15 do
        for seed = 1 to 3 do
          let o = duel (module T) ~seed ~at in
          (match Checker.strictly_serializable o.Runner.history with
          | Checker.Not_serializable r ->
              Alcotest.failf "%s: not serializable: %s" T.name r
          | _ -> ());
          Alcotest.(check bool)
            (Printf.sprintf "%s: survivor never blocks (crash at %d, seed %d)"
               T.name at seed)
            false o.Runner.out_of_steps;
          Alcotest.(check int)
            (Printf.sprintf "%s: p1 commits both (crash at %d, seed %d)"
               T.name at seed)
            2 (p1_commits o)
        done
      done)
    [ (module Ptm_tms.Ofree); (module Ptm_tms.Ofree.Aggressive);
      (module Ptm_tms.Ofree.Polite) ]

(* Greedy/Timestamp is the exception: a crashed owner that already drew
   an older stamp never commits and never ages past the survivor, so the
   younger survivor self-aborts through its whole retry budget. The sweep
   must find at least one such placement — the E18 finding that CM choice
   decides crash-tolerance even inside the obstruction-free family. *)
let test_timestamp_starves_on_elder_corpse () =
  let starved = ref 0 in
  for at = 0 to 15 do
    for seed = 1 to 3 do
      let o = duel (module Ptm_tms.Ofree.Timestamp) ~seed ~at in
      (match Checker.strictly_serializable o.Runner.history with
      | Checker.Not_serializable r ->
          Alcotest.failf "ofree+ts: not serializable: %s" r
      | _ -> ());
      if o.Runner.starved <> [] || p1_commits o < 2 then incr starved
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf
       "an elder corpse starves the younger survivor (%d/48 runs)" !starved)
    true (!starved > 0)

(* ------------------------------------------------------------------ *)
(* DPOR engine bit-identity, per CM variant                            *)
(* ------------------------------------------------------------------ *)

(* The E14-style two-process conflict fixture, explored exhaustively on
   both engines for each CM: the searches must be bit-identical and
   violation-free, with every leaf's history passing both checkers. *)
let mk_conflict (module T : Tm_intf.S_step) engine () =
  let module R = Runner.Make_step (T) in
  let module Sm = Proc.Step in
  let m = Machine.create ~trace:Trace.Full ~engine ~nprocs:2 () in
  let ctx = R.init m ~nobjs:2 in
  Machine.spawn_step m 0
    (Sm.bind (R.begin_tx ctx ~pid:0) (fun tx ->
         Sm.bind (R.read ctx tx 0) (function
           | Error `Abort -> Sm.return ()
           | Ok _ ->
               Sm.bind (R.write ctx tx 1 10) (function
                 | Error `Abort -> Sm.return ()
                 | Ok () -> Sm.bind (R.commit ctx tx) (fun _ -> Sm.return ())))));
  Machine.spawn_step m 1
    (Sm.bind (R.begin_tx ctx ~pid:1) (fun tx ->
         Sm.bind (R.write ctx tx 0 20) (function
           | Error `Abort -> Sm.return ()
           | Ok () ->
               Sm.bind (R.read ctx tx 1) (function
                 | Error `Abort -> Sm.return ()
                 | Ok _ -> Sm.bind (R.commit ctx tx) (fun _ -> Sm.return ())))));
  m

let explore_cm ~crashes (module T : Tm_intf.S_step) engine =
  let final m =
    let entries = Trace.entries (Machine.trace m) in
    let sv = fst (Opacity_stream.check_entries entries) in
    let ov = Checker.opaque (History.of_entries entries) in
    match (ov, sv) with
    | Checker.Dont_know _, _ | _, Opacity_stream.Inconclusive _ -> true
    | Checker.Serializable _, Opacity_stream.Opaque -> true
    | _ -> false
  in
  Explore.run
    ~mk:(mk_conflict (module T) engine)
    ~final ~max_steps:80 ~max_paths:500_000 ~mode:Explore.Dpor ~crashes ()

let stats_key (s : Explore.stats) =
  (s.paths, s.cut, s.pruned, s.violations, s.fault_branches)

let test_cm_engine_bit_identity () =
  List.iter
    (fun (module T : Tm_intf.S_step) ->
      List.iter
        (fun crashes ->
          let f = explore_cm ~crashes (module T) Machine.Fibers in
          let s = explore_cm ~crashes (module T) Machine.Steps in
          Alcotest.(check bool)
            (Printf.sprintf "%s (crashes %d): engines bit-identical" T.name
               crashes)
            true
            (stats_key f = stats_key s);
          Alcotest.(check int)
            (Printf.sprintf "%s (crashes %d): every leaf opacity-clean" T.name
               crashes)
            0 f.Explore.violations;
          Alcotest.(check bool)
            (Printf.sprintf "%s (crashes %d): explored something" T.name
               crashes)
            true (f.Explore.paths > 0))
        [ 0; 1 ])
    Ptm_tms.Registry.ofree_cms_stepwise

(* ------------------------------------------------------------------ *)
(* QCheck: ofree vs dstm differential under random fault plans         *)
(* ------------------------------------------------------------------ *)

type duel_case = { d_seed : int; d_cm : Cm.kind; d_plan : Fault.spec list }

let duel_gen =
  QCheck2.Gen.(
    let* d_seed = int_range 0 1_000_000 in
    let* d_cm = oneofl Cm.all_kinds in
    let* d_plan =
      oneofl
        [
          [];
          [ Fault.crash ~pid:0 ~at:4 ];
          [ Fault.crash ~pid:2 ~at:2 ];
          [ Fault.stall ~pid:1 ~at:1 ~steps:25 ];
          [ Fault.crash ~pid:1 ~at:3; Fault.stall ~pid:0 ~at:5 ~steps:10 ];
          [ Fault.abort ~pid:0 ~op:0; Fault.abort ~pid:2 ~op:1 ];
        ]
    in
    return { d_seed; d_cm; d_plan })

let duel_print c =
  Printf.sprintf "{seed=%d cm=%s plan=[%s]}" c.d_seed (Cm.kind_name c.d_cm)
    (String.concat "; " (List.map Fault.to_string c.d_plan))

(* Run the same random workload + fault plan + schedule through the
   obstruction-free TM (under the drawn CM) and the lock-based dstm it
   contrasts with; on both runs the streaming monitor and the offline
   checker must agree, and neither may produce a falsified history. *)
let agree name (o : Runner.outcome) =
  (match Checker.strictly_serializable o.Runner.history with
  | Checker.Not_serializable r ->
      QCheck2.Test.fail_reportf "%s: not serializable: %s" name r
  | _ -> ());
  match (o.Runner.monitor, Checker.opaque o.Runner.history) with
  | Runner.Monitor_ok _, Checker.Serializable _ -> ()
  | Runner.Monitor_ok _, Checker.Dont_know _
  | Runner.Monitor_inconclusive _, _ ->
      ()
  | Runner.Opacity_violation _, Checker.Not_serializable _ -> ()
  | m, v ->
      QCheck2.Test.fail_reportf "%s: monitor and offline disagree (%s vs %a)"
        name
        (match m with
        | Runner.Monitor_ok _ -> "ok"
        | Runner.Opacity_violation _ -> "violation"
        | Runner.Monitor_inconclusive _ -> "inconclusive"
        | Runner.Not_monitored -> "not monitored")
        Checker.pp_verdict v

let qcheck_ofree_vs_dstm =
  QCheck2.Test.make ~count:120 ~name:"ofree vs dstm under random fault plans"
    ~print:duel_print duel_gen (fun c ->
      let w =
        Workload.random ~seed:c.d_seed ~nprocs:3 ~nobjs:2 ~txs_per_proc:2
          ~ops_per_tx:3 ()
      in
      let run tm =
        Runner.run tm ~retries:2 ~faults:c.d_plan ~max_steps:60_000
          ~monitor:Runner.Monitor_stream
          ~schedule:(Runner.Random_sched c.d_seed)
          w
      in
      let of_o = run (Ptm_tms.Registry.ofree_with_cm c.d_cm) in
      let ds_o = run (module Ptm_tms.Dstm) in
      agree ("ofree+" ^ Cm.kind_name c.d_cm) of_o;
      agree "dstm" ds_o;
      (* determinism: the ofree run replays bit-identically *)
      let of_o' = run (Ptm_tms.Registry.ofree_with_cm c.d_cm) in
      if of_o.Runner.history <> of_o'.Runner.history then
        QCheck2.Test.fail_reportf "ofree replay diverged";
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ofree"
    [
      ( "cm",
        [
          Alcotest.test_case "aggressive" `Quick test_cm_aggressive;
          Alcotest.test_case "polite" `Quick test_cm_polite;
          Alcotest.test_case "karma" `Quick test_cm_karma;
          Alcotest.test_case "timestamp" `Quick test_cm_timestamp;
        ] );
      ( "crash",
        [
          Alcotest.test_case "steal from the corpse" `Quick
            test_steal_from_corpse;
          Alcotest.test_case "timestamp starves on an elder corpse" `Quick
            test_timestamp_starves_on_elder_corpse;
        ] );
      ( "explore",
        [
          Alcotest.test_case "engines bit-identical per CM" `Quick
            test_cm_engine_bit_identity;
        ] );
      ("qcheck", [ of_q qcheck_ofree_vs_dstm ]);
    ]
