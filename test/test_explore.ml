(* Bounded exhaustive schedule exploration: verify mutual exclusion of every
   lock and opacity of every TM over ALL interleavings of small
   configurations (not merely sampled schedules), and check that the
   explorer actually finds violations in deliberately broken algorithms. *)

open Ptm_machine
open Ptm_mutex
open Ptm_core

(* Two processes, one critical section each, occupancy assertions inside. *)
let mk_mutex (module L : Mutex_intf.S) ?(nprocs = 2) () =
  let m = Machine.create ~nprocs in
  let lock = L.create m ~nprocs in
  let c = Machine.alloc m ~name:"c" (Value.Int 0) in
  let occupancy = ref 0 in
  for pid = 0 to nprocs - 1 do
    Machine.spawn m pid (fun () ->
        L.enter lock ~pid;
        incr occupancy;
        assert (!occupancy = 1);
        let v = Proc.read_int c in
        Proc.write c (Value.Int (v + 1));
        assert (!occupancy = 1);
        decr occupancy;
        L.exit_cs lock ~pid)
  done;
  m

(* On maximal (uncut) paths both processes finished: the counter must be
   exactly 2 (no lost update). *)
let counter_is nprocs m =
  let mem = Machine.memory m in
  let rec find a =
    if a >= Memory.size mem then false
    else if Memory.name mem a = "c" then
      Value.to_int (Memory.peek mem a) = nprocs
    else find (a + 1)
  in
  find 0

let explore_lock ?(max_steps = 24) ?(max_paths = 1_000_000)
    (module L : Mutex_intf.S) () =
  let s =
    Explore.run
      ~mk:(mk_mutex (module L))
      ~final:(counter_is 2) ~max_steps ~max_paths ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: no violation in %d complete paths (%d cut)" L.name
       s.Explore.paths s.Explore.cut)
    0 s.Explore.violations;
  Alcotest.(check bool)
    (L.name ^ ": explored a nontrivial number of paths")
    true
    (s.Explore.paths > 100)

(* TM workload: T0 = read X0; write X1; commit — T1 = write X0; read X1;
   commit. All interleavings must yield opaque histories. *)
let mk_tm (module T : Tm_intf.S) () =
  let module R = Runner.Make (T) in
  let m = Machine.create ~nprocs:2 in
  let ctx = R.init m ~nobjs:2 in
  Machine.spawn m 0 (fun () ->
      let tx = R.begin_tx ctx ~pid:0 in
      match R.read ctx tx 0 with
      | Error `Abort -> ()
      | Ok _ -> (
          match R.write ctx tx 1 10 with
          | Error `Abort -> ()
          | Ok () -> ignore (R.commit ctx tx)));
  Machine.spawn m 1 (fun () ->
      let tx = R.begin_tx ctx ~pid:1 in
      match R.write ctx tx 0 20 with
      | Error `Abort -> ()
      | Ok () -> (
          match R.read ctx tx 1 with
          | Error `Abort -> ()
          | Ok _ -> ignore (R.commit ctx tx)));
  m

let opaque_final m =
  let h = History.of_trace (Machine.trace m) in
  Checker.is_ok (Checker.opaque h)

let explore_tm ?(max_steps = 40) (module T : Tm_intf.S) () =
  let s =
    Explore.run ~mk:(mk_tm (module T)) ~final:opaque_final ~max_steps
      ~max_paths:1_000_000 ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: opaque on all %d complete paths" T.name
       s.Explore.paths)
    0 s.Explore.violations

(* ------------------------------------------------------------------ *)
(* Strong progressiveness, model-checked: two transactions conflicting *)
(* on a single t-object — in EVERY schedule at least one must commit.  *)
(* ------------------------------------------------------------------ *)

let mk_single_object (module T : Tm_intf.S) () =
  let module R = Runner.Make (T) in
  let m = Machine.create ~nprocs:2 in
  let ctx = R.init m ~nobjs:1 in
  for pid = 0 to 1 do
    Machine.spawn m pid (fun () ->
        let tx = R.begin_tx ctx ~pid in
        match R.read ctx tx 0 with
        | Error `Abort -> ()
        | Ok _ -> (
            match R.write ctx tx 0 (pid + 1) with
            | Error `Abort -> ()
            | Ok () -> ignore (R.commit ctx tx)))
  done;
  m

let some_commit m =
  let h = History.of_trace (Machine.trace m) in
  List.exists (fun t -> t.History.status = History.Committed) h.History.txns

let explore_strongly_progressive (module T : Tm_intf.S) () =
  let s =
    Explore.run
      ~mk:(mk_single_object (module T))
      ~final:some_commit ~max_steps:40 ~max_paths:2_000_000 ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: some transaction commits on all %d paths" T.name
       s.Explore.paths)
    0 s.Explore.violations

(* Visread's upgrade deadlock is the canonical strong-progressiveness
   failure: both transactions read-lock, both try to upgrade, both abort.
   The explorer must find it — this is why visread claims
   strongly_progressive = false. *)
let test_visread_upgrade_all_abort () =
  let s =
    Explore.run
      ~mk:(mk_single_object (module Ptm_tms.Visread))
      ~final:some_commit ~max_steps:40 ~max_paths:2_000_000 ()
  in
  Alcotest.(check bool)
    "mutual-abort schedule found" true
    (s.Explore.violations > 0)

(* ------------------------------------------------------------------ *)
(* The explorer must detect violations.                                *)
(* ------------------------------------------------------------------ *)

module Broken_lock : Mutex_intf.S = struct
  let name = "broken"

  type t = unit

  let create _ ~nprocs:_ = ()
  let enter () ~pid:_ = ()
  let exit_cs () ~pid:_ = ()
end

(* A lock with a razor-thin race: test-then-set non-atomically. Random
   testing can miss it; exhaustive exploration cannot. *)
module Racy_lock : Mutex_intf.S = struct
  let name = "racy"

  type t = { flag : Memory.addr }

  let create machine ~nprocs:_ =
    { flag = Machine.alloc machine ~name:"racy.flag" (Value.Bool false) }

  let enter t ~pid:_ =
    let rec go () =
      if Proc.read_bool t.flag then go ()
      else Proc.write t.flag (Value.Bool true) (* non-atomic test-then-set *)
    in
    go ()

  let exit_cs t ~pid:_ = Proc.write t.flag (Value.Bool false)
end

let test_detects_broken () =
  let s = Explore.run ~mk:(mk_mutex (module Broken_lock)) ~max_steps:16 () in
  Alcotest.(check bool) "violations found" true (s.Explore.violations > 0);
  match s.Explore.first_violation with
  | None -> Alcotest.fail "expected a witness schedule"
  | Some w ->
      (* the witness replays to a crash *)
      let m = mk_mutex (module Broken_lock) () in
      List.iter (fun pid -> ignore (Machine.step m pid)) w;
      let crashed =
        List.exists
          (fun pid ->
            match Machine.status m pid with
            | Machine.Crashed _ -> true
            | _ -> false)
          [ 0; 1 ]
      in
      Alcotest.(check bool) "witness replays to the violation" true crashed

let test_detects_racy () =
  let s = Explore.run ~mk:(mk_mutex (module Racy_lock)) ~max_steps:20 () in
  Alcotest.(check bool) "race found" true (s.Explore.violations > 0)

let test_deterministic () =
  let run () = Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:20 () in
  Alcotest.(check bool) "same stats" true (run () = run ())

let lock_cases =
  List.map
    (fun ((module L : Mutex_intf.S), max_steps, max_paths) ->
      Alcotest.test_case L.name `Slow
        (explore_lock ~max_steps ~max_paths (module L)))
    [
      ((module Tas), 24, 1_000_000);
      ((module Ttas), 24, 1_000_000);
      ((module Ticket), 24, 1_000_000);
      ((module Anderson), 24, 1_000_000);
      ((module Mcs), 24, 1_000_000);
      ((module Clh), 24, 1_000_000);
      ((module Tournament), 22, 1_000_000);
      ((module Yang_anderson), 18, 2_000_000);
      ((module Mutex_registry.Tm_oneshot), 20, 2_000_000);
      ((module Mutex_registry.Tm_llsc), 20, 2_000_000);
    ]

(* OSTM's commit protocol (descriptor set-up plus helping) makes even the
   tiny scenarios' interleaving spaces exceed the exhaustive path budget, so
   its schedule coverage is a deep random sweep instead: thousands of seeded
   schedules over both scenarios, every history checked for opacity. *)
let ostm_random_sweep () =
  for seed = 1 to 1500 do
    let m = mk_tm (module Ptm_tms.Ostm) () in
    Sched.random ~seed m;
    Machine.check_crashes m;
    if not (opaque_final m) then
      Alcotest.failf "ostm two-object scenario, seed %d: not opaque" seed;
    let m = mk_single_object (module Ptm_tms.Ostm) () in
    Sched.random ~seed m;
    Machine.check_crashes m;
    let h = History.of_trace (Machine.trace m) in
    if not (Checker.is_ok (Checker.opaque h)) then
      Alcotest.failf "ostm single-object scenario, seed %d: not opaque" seed;
    if not (some_commit m) then
      Alcotest.failf
        "ostm single-object scenario, seed %d: no transaction committed" seed
  done

(* Bakery's entry section is too long for exhaustive exploration within the
   path budget; deep random sweep instead (the standard mutex suite also
   covers it). *)
let bakery_random_sweep () =
  for seed = 1 to 1000 do
    List.iter
      (fun nprocs ->
        match
          Harness.run (module Bakery) ~nprocs ~rounds:2 ~schedule:(`Random seed)
            ()
        with
        | _ -> ()
        | exception Harness.Mutual_exclusion_violation msg ->
            Alcotest.failf "bakery seed %d n=%d: %s" seed nprocs msg
        | exception Sched.Out_of_steps ->
            Alcotest.failf "bakery seed %d n=%d: no progress" seed nprocs)
      [ 2; 3; 4 ]
  done

let tm_cases =
  List.map
    (fun (module T : Tm_intf.S) ->
      if T.name = "ostm" then
        Alcotest.test_case "ostm (random sweep)" `Slow ostm_random_sweep
      else Alcotest.test_case T.name `Slow (explore_tm (module T)))
    Ptm_tms.Registry.all

let strong_cases =
  List.map
    (fun (module T : Tm_intf.S) ->
      Alcotest.test_case T.name `Slow (explore_strongly_progressive (module T)))
    [
      (module Ptm_tms.Oneshot : Tm_intf.S);
      (module Ptm_tms.Oneshot_llsc : Tm_intf.S);
      (module Ptm_tms.Sgl : Tm_intf.S);
      (module Ptm_tms.Dstm : Tm_intf.S);
    ]
  @ [
      Alcotest.test_case "visread upgrade all-abort" `Quick
        test_visread_upgrade_all_abort;
    ]

let () =
  Alcotest.run "explore"
    [
      ( "mutex-all-schedules",
        lock_cases
        @ [ Alcotest.test_case "bakery (random sweep)" `Slow bakery_random_sweep ]
      );
      ("tm-opacity-all-schedules", tm_cases);
      ("strong-progressiveness-all-schedules", strong_cases);
      ( "detection",
        [
          Alcotest.test_case "broken lock found" `Quick test_detects_broken;
          Alcotest.test_case "racy lock found" `Quick test_detects_racy;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
