(* Bounded exhaustive schedule exploration: verify mutual exclusion of every
   lock and opacity of every TM over ALL interleavings of small
   configurations (not merely sampled schedules), and check that the
   explorer actually finds violations in deliberately broken algorithms. *)

open Ptm_machine
open Ptm_mutex
open Ptm_core

(* Two processes, one critical section each, occupancy assertions inside. *)
let mk_mutex (module L : Mutex_intf.S) ?(nprocs = 2) ?(trace = Trace.Full) () =
  let m = Machine.create ~trace ~nprocs () in
  let lock = L.create m ~nprocs in
  let c = Machine.alloc m ~name:"c" (Value.Int 0) in
  (* The occupancy counter lives in a machine cell updated via peek/poke —
     no events, so the schedule tree is unchanged, but unlike a captured
     [ref] it is restored when the explorer resets a pooled machine. *)
  let occ = Machine.alloc m ~name:"occ" (Value.Int 0) in
  let mem = Machine.memory m in
  let occ_read () = Value.to_int (Memory.peek mem occ) in
  let occ_write o = Memory.poke mem occ (Value.Int o) in
  for pid = 0 to nprocs - 1 do
    Machine.spawn m pid (fun () ->
        L.enter lock ~pid;
        occ_write (occ_read () + 1);
        assert (occ_read () = 1);
        let v = Proc.read_int c in
        Proc.write c (Value.Int (v + 1));
        assert (occ_read () = 1);
        occ_write (occ_read () - 1);
        L.exit_cs lock ~pid)
  done;
  m

(* On maximal (uncut) paths both processes finished: the counter must be
   exactly 2 (no lost update). *)
let counter_is nprocs m =
  let mem = Machine.memory m in
  let rec find a =
    if a >= Memory.size mem then false
    else if Memory.name mem a = "c" then
      Value.to_int (Memory.peek mem a) = nprocs
    else find (a + 1)
  in
  find 0

let explore_lock ?(max_steps = 24) ?(max_paths = 1_000_000)
    (module L : Mutex_intf.S) () =
  let s =
    Explore.run
      ~mk:(mk_mutex (module L))
      ~final:(counter_is 2) ~max_steps ~max_paths ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: no violation in %d complete paths (%d cut)" L.name
       s.Explore.paths s.Explore.cut)
    0 s.Explore.violations;
  Alcotest.(check bool)
    (L.name ^ ": explored a nontrivial number of paths")
    true
    (s.Explore.paths > 100)

(* TM workload: T0 = read X0; write X1; commit — T1 = write X0; read X1;
   commit. All interleavings must yield opaque histories. *)
let mk_tm (module T : Tm_intf.S) () =
  let module R = Runner.Make (T) in
  let m = Machine.create ~nprocs:2 () in
  let ctx = R.init m ~nobjs:2 in
  Machine.spawn m 0 (fun () ->
      let tx = R.begin_tx ctx ~pid:0 in
      match R.read ctx tx 0 with
      | Error `Abort -> ()
      | Ok _ -> (
          match R.write ctx tx 1 10 with
          | Error `Abort -> ()
          | Ok () -> ignore (R.commit ctx tx)));
  Machine.spawn m 1 (fun () ->
      let tx = R.begin_tx ctx ~pid:1 in
      match R.write ctx tx 0 20 with
      | Error `Abort -> ()
      | Ok () -> (
          match R.read ctx tx 1 with
          | Error `Abort -> ()
          | Ok _ -> ignore (R.commit ctx tx)));
  m

let opaque_final m =
  let h = History.of_trace (Machine.trace m) in
  Checker.is_ok (Checker.opaque h)

let explore_tm ?(max_steps = 40) (module T : Tm_intf.S) () =
  let s =
    Explore.run ~mk:(mk_tm (module T)) ~final:opaque_final ~max_steps
      ~max_paths:1_000_000 ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: opaque on all %d complete paths" T.name
       s.Explore.paths)
    0 s.Explore.violations

(* ------------------------------------------------------------------ *)
(* Strong progressiveness, model-checked: two transactions conflicting *)
(* on a single t-object — in EVERY schedule at least one must commit.  *)
(* ------------------------------------------------------------------ *)

let mk_single_object (module T : Tm_intf.S) () =
  let module R = Runner.Make (T) in
  let m = Machine.create ~nprocs:2 () in
  let ctx = R.init m ~nobjs:1 in
  for pid = 0 to 1 do
    Machine.spawn m pid (fun () ->
        let tx = R.begin_tx ctx ~pid in
        match R.read ctx tx 0 with
        | Error `Abort -> ()
        | Ok _ -> (
            match R.write ctx tx 0 (pid + 1) with
            | Error `Abort -> ()
            | Ok () -> ignore (R.commit ctx tx)))
  done;
  m

let some_commit m =
  let h = History.of_trace (Machine.trace m) in
  List.exists (fun t -> t.History.status = History.Committed) h.History.txns

let explore_strongly_progressive (module T : Tm_intf.S) () =
  let s =
    Explore.run
      ~mk:(mk_single_object (module T))
      ~final:some_commit ~max_steps:40 ~max_paths:2_000_000 ()
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: some transaction commits on all %d paths" T.name
       s.Explore.paths)
    0 s.Explore.violations

(* Visread's upgrade deadlock is the canonical strong-progressiveness
   failure: both transactions read-lock, both try to upgrade, both abort.
   The explorer must find it — this is why visread claims
   strongly_progressive = false. *)
let test_visread_upgrade_all_abort () =
  let s =
    Explore.run
      ~mk:(mk_single_object (module Ptm_tms.Visread))
      ~final:some_commit ~max_steps:40 ~max_paths:2_000_000 ()
  in
  Alcotest.(check bool)
    "mutual-abort schedule found" true
    (s.Explore.violations > 0)

(* ------------------------------------------------------------------ *)
(* The explorer must detect violations.                                *)
(* ------------------------------------------------------------------ *)

module Broken_lock : Mutex_intf.S = struct
  let name = "broken"

  type t = unit

  let create _ ~nprocs:_ = ()
  let enter () ~pid:_ = ()
  let exit_cs () ~pid:_ = ()
end

(* A lock with a razor-thin race: test-then-set non-atomically. Random
   testing can miss it; exhaustive exploration cannot. *)
module Racy_lock : Mutex_intf.S = struct
  let name = "racy"

  type t = { flag : Memory.addr }

  let create machine ~nprocs:_ =
    { flag = Machine.alloc machine ~name:"racy.flag" (Value.Bool false) }

  let enter t ~pid:_ =
    let rec go () =
      if Proc.read_bool t.flag then go ()
      else Proc.write t.flag (Value.Bool true) (* non-atomic test-then-set *)
    in
    go ()

  let exit_cs t ~pid:_ = Proc.write t.flag (Value.Bool false)
end

let test_detects_broken () =
  let s = Explore.run ~mk:(mk_mutex (module Broken_lock)) ~max_steps:16 () in
  Alcotest.(check bool) "violations found" true (s.Explore.violations > 0);
  match s.Explore.first_violation with
  | None -> Alcotest.fail "expected a witness schedule"
  | Some w ->
      (* the witness replays to a crash *)
      let m = mk_mutex (module Broken_lock) () in
      List.iter (fun pid -> ignore (Machine.step m pid)) w;
      let crashed =
        List.exists
          (fun pid ->
            match Machine.status m pid with
            | Machine.Crashed _ -> true
            | _ -> false)
          [ 0; 1 ]
      in
      Alcotest.(check bool) "witness replays to the violation" true crashed

let test_detects_racy () =
  let s = Explore.run ~mk:(mk_mutex (module Racy_lock)) ~max_steps:20 () in
  Alcotest.(check bool) "race found" true (s.Explore.violations > 0)

let test_deterministic () =
  let run () = Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:20 () in
  Alcotest.(check bool) "same stats" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Partial-order reduction, validated differentially: on every          *)
(* configuration the reduced search must reach the same verdict as the  *)
(* naive one while exploring no more (in practice: far fewer) paths.    *)
(* ------------------------------------------------------------------ *)

let differential ?(max_steps = 40) ?(max_paths = 2_000_000) ~name ~mk ~final
    () =
  let naive = Explore.run ~mk ~final ~max_steps ~max_paths () in
  let dpor =
    Explore.run ~mk ~final ~max_steps ~max_paths ~mode:Explore.Dpor ()
  in
  Alcotest.(check bool)
    (name ^ ": naive search completed")
    false naive.Explore.exhausted;
  Alcotest.(check bool)
    (name ^ ": reduced search completed")
    false dpor.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "%s: identical verdict (naive %d violations, dpor %d)"
       name naive.Explore.violations dpor.Explore.violations)
    (naive.Explore.violations > 0)
    (dpor.Explore.violations > 0);
  Alcotest.(check bool)
    (name ^ ": identical witness presence")
    (naive.Explore.first_violation <> None)
    (dpor.Explore.first_violation <> None);
  Alcotest.(check bool)
    (Printf.sprintf "%s: no extra paths (naive %d, dpor %d)" name
       naive.Explore.paths dpor.Explore.paths)
    true
    (dpor.Explore.paths <= naive.Explore.paths);
  (naive, dpor)

(* The DESIGN.md S3 validation story: the undolog ABA configuration's
   13,773 naive interleavings. The acceptance bar for the reduction is a
   >= 5x cut in explored paths with the identical verdict. *)
let test_undolog_aba_reduction () =
  let naive, dpor =
    differential ~name:"undolog-aba"
      ~mk:(mk_tm (module Ptm_tms.Undolog))
      ~final:opaque_final ()
  in
  Alcotest.(check int) "13,773 naive interleavings" 13_773 naive.Explore.paths;
  Alcotest.(check bool)
    (Printf.sprintf "at least 5x fewer paths (%d vs %d, ratio %.0fx)"
       naive.Explore.paths dpor.Explore.paths
       (Explore.reduction_ratio ~naive ~reduced:dpor))
    true
    (naive.Explore.paths >= 5 * dpor.Explore.paths)

let dpor_tm_cases =
  List.filter_map
    (fun (module T : Tm_intf.S) ->
      if T.name = "ostm" then None
      else
        Some
          (Alcotest.test_case T.name `Slow (fun () ->
               ignore
                 (differential ~name:T.name
                    ~mk:(mk_tm (module T))
                    ~final:opaque_final ()))))
    Ptm_tms.Registry.all

(* OSTM's helping protocol exceeds the naive budget at full depth, so the
   differential runs at a shallower bound where the naive search completes;
   the reduced search then covers the full-depth scenarios the naive one
   never could (the random sweep above remains the naive coverage). *)
let test_ostm_differential () =
  ignore
    (differential ~name:"ostm" ~max_steps:18
       ~mk:(mk_tm (module Ptm_tms.Ostm))
       ~final:opaque_final ())

let test_ostm_dpor_full_depth () =
  List.iter
    (fun (name, mk) ->
      let s =
        Explore.run ~mk ~final:opaque_final ~max_steps:40
          ~max_paths:2_000_000 ~mode:Explore.Dpor ()
      in
      Alcotest.(check bool) (name ^ ": search completed") false
        s.Explore.exhausted;
      Alcotest.(check int)
        (Printf.sprintf "%s: opaque on all %d complete paths" name
           s.Explore.paths)
        0 s.Explore.violations)
    [
      ("ostm two-object", mk_tm (module Ptm_tms.Ostm));
      ("ostm single-object", mk_single_object (module Ptm_tms.Ostm));
    ]

let dpor_single_object_cases =
  List.map
    (fun (module T : Tm_intf.S) ->
      Alcotest.test_case T.name `Slow (fun () ->
          ignore
            (differential ~name:T.name
               ~mk:(mk_single_object (module T))
               ~final:some_commit ())))
    [
      (module Ptm_tms.Oneshot : Tm_intf.S);
      (module Ptm_tms.Oneshot_llsc : Tm_intf.S);
      (module Ptm_tms.Sgl : Tm_intf.S);
      (module Ptm_tms.Dstm : Tm_intf.S);
      (* visread violates strong progressiveness: both searches must find
         the mutual-abort schedule (positive verdict on both sides). *)
      (module Ptm_tms.Visread : Tm_intf.S);
    ]

(* A deliberately lossy counter: three processes increment non-atomically
   (read, then write), so most interleavings lose an update. *)
let mk_lossy () =
  let m = Machine.create ~nprocs:3 () in
  let c = Machine.alloc m ~name:"c" (Value.Int 0) in
  for pid = 0 to 2 do
    Machine.spawn m pid (fun () ->
        let v = Proc.read_int c in
        Proc.write c (Value.Int (v + 1)))
  done;
  m

let test_differential_broken () =
  ignore
    (differential ~name:"broken" ~max_steps:16
       ~mk:(mk_mutex (module Broken_lock))
       ~final:(counter_is 2) ())

let test_differential_racy () =
  ignore
    (differential ~name:"racy" ~max_steps:20
       ~mk:(mk_mutex (module Racy_lock))
       ~final:(counter_is 2) ())

let test_differential_lossy () =
  ignore
    (differential ~name:"lossy" ~max_steps:12 ~mk:mk_lossy
       ~final:(counter_is 3) ())

(* Random small workloads: the agreement must hold beyond the hand-picked
   configurations. Two processes, 1-2 transactional ops each, over three
   TMs with very different conflict behaviour. *)
let prop_dpor_matches_naive =
  let open QCheck2 in
  let gen =
    Gen.(
      triple (int_bound 2)
        (list_size (1 -- 2) (pair (int_bound 1) bool))
        (list_size (1 -- 2) (pair (int_bound 1) bool)))
  in
  let print (t, a, b) =
    let ops l =
      String.concat ";"
        (List.map
           (fun (o, w) -> Printf.sprintf "%s%d" (if w then "W" else "R") o)
           l)
    in
    Printf.sprintf "tm=%d p0=[%s] p1=[%s]" t (ops a) (ops b)
  in
  Test.make ~count:12 ~name:"dpor agrees with naive on random workloads"
    ~print gen (fun (ti, ops0, ops1) ->
      let tms =
        [|
          (module Ptm_tms.Dstm : Tm_intf.S);
          (module Ptm_tms.Visread : Tm_intf.S);
          (module Ptm_tms.Tl2 : Tm_intf.S);
        |]
      in
      let (module T) = tms.(ti) in
      let mk () =
        let module R = Runner.Make (T) in
        let m = Machine.create ~nprocs:2 () in
        let ctx = R.init m ~nobjs:2 in
        let prog pid ops () =
          let tx = R.begin_tx ctx ~pid in
          let rec go = function
            | [] -> ignore (R.commit ctx tx)
            | (obj, write) :: rest ->
                let ok =
                  if write then
                    match R.write ctx tx obj (pid + 1) with
                    | Ok () -> true
                    | Error `Abort -> false
                  else
                    match R.read ctx tx obj with
                    | Ok _ -> true
                    | Error `Abort -> false
                in
                if ok then go rest
          in
          go ops
        in
        Machine.spawn m 0 (prog 0 ops0);
        Machine.spawn m 1 (prog 1 ops1);
        m
      in
      let naive = Explore.run ~mk ~final:opaque_final ~max_steps:40 () in
      let dpor =
        Explore.run ~mk ~final:opaque_final ~max_steps:40 ~mode:Explore.Dpor
          ()
      in
      (not naive.Explore.exhausted)
      && (not dpor.Explore.exhausted)
      && naive.Explore.violations > 0 = (dpor.Explore.violations > 0)
      && naive.Explore.first_violation <> None
         = (dpor.Explore.first_violation <> None)
      && dpor.Explore.paths <= naive.Explore.paths)

(* ------------------------------------------------------------------ *)
(* Budget safety: the path budget returns partial stats, never raises,  *)
(* and the bound is strict.                                             *)
(* ------------------------------------------------------------------ *)

(* TAS with two processes at max_steps 24 has exactly 4096 leaves
   (1938 complete + 2158 cut) — a fixture for the strict bound. *)
let test_budget_exact () =
  let mk = mk_mutex (module Tas) in
  let full = Explore.run ~mk ~max_steps:24 ~max_paths:4096 () in
  Alcotest.(check bool) "budget == leaves: complete" false
    full.Explore.exhausted;
  Alcotest.(check int) "complete paths" 1938 full.Explore.paths;
  Alcotest.(check int) "cut paths" 2158 full.Explore.cut

let test_budget_strict () =
  let mk = mk_mutex (module Tas) in
  let partial = Explore.run ~mk ~max_steps:24 ~max_paths:4095 () in
  Alcotest.(check bool) "one leaf short: exhausted" true
    partial.Explore.exhausted;
  Alcotest.(check int) "exactly max_paths leaves admitted, not one more"
    4095
    (partial.Explore.paths + partial.Explore.cut)

let test_budget_preserves_witness () =
  List.iter
    (fun mode ->
      let s =
        Explore.run ~mk:mk_lossy ~final:(counter_is 3) ~max_steps:12
          ~max_paths:20 ~mode ()
      in
      Alcotest.(check bool) "exhausted" true s.Explore.exhausted;
      Alcotest.(check bool) "violations found before the budget tripped"
        true
        (s.Explore.violations > 0);
      Alcotest.(check bool) "witness preserved" true
        (s.Explore.first_violation <> None))
    [ Explore.Naive; Explore.Dpor ]

(* ------------------------------------------------------------------ *)
(* Trace sinks and the bitmask encoding.                                *)
(* ------------------------------------------------------------------ *)

(* The sink is pure observation: every stat of the search — including the
   traversal bookkeeping (replays, steps) and the witness — is identical
   whether the explored machines record a full trace, a bounded ring, or
   nothing. The one exception is [batched_events]: the fused fast arm only
   engages with the sink off, so that instrumentation counter is zeroed
   before comparing ([fused_steps] stays in — it is sink-invariant). The
   verdicts here are crash-based (occupancy assertions), so they need no
   trace. *)
let scrub_sink s = { s with Explore.batched_events = 0 }

let test_sink_invariance () =
  List.iter
    (fun ((module L : Mutex_intf.S), max_steps) ->
      List.iter
        (fun mode ->
          let run trace =
            Explore.run
              ~mk:(mk_mutex (module L) ~trace)
              ~max_steps ~mode ()
          in
          let full = run Trace.Full in
          let ring = run (Trace.Ring 4) in
          let off = run Trace.Off in
          Alcotest.(check bool)
            (L.name ^ ": ring sink changes nothing")
            true
            (scrub_sink full = scrub_sink ring);
          Alcotest.(check bool)
            (L.name ^ ": off sink changes nothing")
            true
            (scrub_sink full = scrub_sink off))
        [ Explore.Naive; Explore.Dpor ])
    [ ((module Tas), 24); ((module Ticket), 24) ]

(* Same invariance on random lossy programs: each process does a random
   sequence of read/increment rounds on one of two cells, so schedules
   both with and without violations are generated. *)
let prop_sinks_agree =
  let open QCheck2 in
  let gen = Gen.(list_size (2 -- 3) (list_size (1 -- 2) (int_bound 1))) in
  let print progs =
    String.concat " | "
      (List.map
         (fun p -> String.concat ";" (List.map string_of_int p))
         progs)
  in
  Test.make ~count:30 ~name:"trace sinks do not change exploration" ~print
    gen (fun progs ->
      let nprocs = List.length progs in
      let mk trace () =
        let m = Machine.create ~trace ~nprocs () in
        let cells =
          [| Machine.alloc m ~name:"a" (Value.Int 0);
             Machine.alloc m ~name:"b" (Value.Int 0) |]
        in
        List.iteri
          (fun pid prog ->
            Machine.spawn m pid (fun () ->
                List.iter
                  (fun obj ->
                    let c = cells.(obj) in
                    let v = Proc.read_int c in
                    Proc.write c (Value.Int (v + 1)))
                  prog))
          progs;
        m
      in
      List.for_all
        (fun mode ->
          let run trace =
            Explore.run ~mk:(mk trace) ~max_steps:14 ~max_paths:30_000 ~mode
              ()
          in
          let full = scrub_sink (run Trace.Full) in
          full = scrub_sink (run Trace.Off)
          && full = scrub_sink (run (Trace.Ring 3)))
        [ Explore.Naive; Explore.Dpor ])

(* The DPOR path/prune counts of the standard fixtures, pinned: the bitmask
   sleep/backtrack sets must reproduce the original assoc-list search
   node for node, not merely the verdicts. *)
let test_dpor_counts_pinned () =
  List.iter
    (fun (name, mk, max_steps, paths, cut, pruned) ->
      let s = Explore.run ~mk ~max_steps ~mode:Explore.Dpor () in
      Alcotest.(check (triple int int int))
        (name ^ ": pinned dpor stats")
        (paths, cut, pruned)
        (s.Explore.paths, s.Explore.cut, s.Explore.pruned))
    [
      ("tas", (fun () -> mk_mutex (module Tas) ()), 24, 17, 6, 0);
      ("ticket", (fun () -> mk_mutex (module Ticket) ()), 24, 13, 7, 1);
      ("undolog", mk_tm (module Ptm_tms.Undolog), 40, 24, 0, 25);
      ("dstm", mk_tm (module Ptm_tms.Dstm), 40, 19, 0, 21);
    ]

(* The bitmask encoding caps the machine at 62 processes; beyond that the
   explorer must refuse loudly, not overflow silently. (Machines themselves
   still take any nprocs — the Theorem 9 sweeps go to 64.) *)
let test_max_procs_rejected () =
  let mk () = Machine.create ~nprocs:63 () in
  Alcotest.check_raises "63 procs rejected"
    (Invalid_argument
       "Explore.run: 63 processes, but the bitmask sleep/backtrack sets \
        support at most 62")
    (fun () -> ignore (Explore.run ~mk ()));
  (* 62 is fine (nothing spawned: the search is a single empty path) *)
  let s = Explore.run ~mk:(fun () -> Machine.create ~nprocs:62 ()) () in
  Alcotest.(check int) "62 procs accepted" 1 s.Explore.paths

let test_replays_counted () =
  let s = Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:24 () in
  (* every leaf beyond the first along each node's in-place branch comes
     from a replayed sibling: 4096 leaves from one root = 4095 replays *)
  Alcotest.(check int) "one replay per non-first sibling" 4095
    s.Explore.replays;
  Alcotest.(check bool) "steps include replayed prefixes" true
    (s.Explore.steps > 4096)

(* ------------------------------------------------------------------ *)
(* Replay machinery: machine pooling, checkpointed suffix replay and   *)
(* forced-run fusion are pure performance devices — every stat except  *)
(* the steps/saved split must be bit-identical to the naive baseline.  *)
(* ------------------------------------------------------------------ *)

(* Fold the fed prefix positions back into [steps]: how the work splits
   between re-executed and fed positions is the only thing a replay
   configuration may change — besides the pure instrumentation counters
   ([fused_steps]/[batched_events]), which exist to measure the fusion and
   so are zeroed before comparing. *)
let scrub_replay s =
  {
    s with
    Explore.steps = s.Explore.steps + s.Explore.replay_steps_saved;
    replay_steps_saved = 0;
    fused_steps = 0;
    batched_events = 0;
  }

let replay_configs =
  [
    ("pool", true, 0, false);
    ("fuse", false, 0, true);
    ("ckpt1", false, 1, false);
    ("ckpt4", false, 4, false);
    ("pool+ckpt4+fuse", true, 4, true);
    ("pool+ckpt16+fuse", true, 16, true);
  ]

let test_replay_differential () =
  List.iter
    (fun ((module L : Mutex_intf.S), mode, max_steps) ->
      List.iter
        (fun trace ->
          let run ~pool ~stride ~fuse =
            Explore.run
              ~mk:(mk_mutex (module L) ~trace)
              ~max_steps ~mode ~pool ~checkpoint_stride:stride ~fuse ()
          in
          let base = run ~pool:false ~stride:0 ~fuse:false in
          Alcotest.(check int) "baseline feeds nothing" 0
            base.Explore.replay_steps_saved;
          List.iter
            (fun (label, pool, stride, fuse) ->
              let s = run ~pool ~stride ~fuse in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s" L.name label)
                true
                (scrub_replay s = scrub_replay base))
            replay_configs)
        [ Trace.Full; Trace.Off ])
    [
      ((module Tas : Mutex_intf.S), Explore.Naive, 16);
      ((module Tas : Mutex_intf.S), Explore.Dpor, 24);
      ((module Ticket : Mutex_intf.S), Explore.Dpor, 24);
    ]

let test_replay_defaults_pinned () =
  (* The default settings (pool on, stride 4, fusion on) reproduce the
     no-pool no-checkpoint no-fusion exploration on every stat except the
     steps/saved split. *)
  List.iter
    (fun mode ->
      let dflt = Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:24 ~mode () in
      let base =
        Explore.run
          ~mk:(mk_mutex (module Tas))
          ~max_steps:24 ~mode ~pool:false ~checkpoint_stride:0 ~fuse:false ()
      in
      Alcotest.(check bool) "defaults match baseline" true
        (scrub_replay dflt = scrub_replay base);
      Alcotest.(check int) "steps + saved is invariant" base.Explore.steps
        (dflt.Explore.steps + dflt.Explore.replay_steps_saved))
    [ Explore.Naive; Explore.Dpor ]

let test_checkpoint_savings () =
  (* At stride <= 4 the fed prefixes must cover more than half of the
     replay tax: saved > 50% of the steps the baseline spends on replayed
     prefixes (= all steps beyond one depth-bounded first descent). *)
  (* With stride 1 a checkpoint sits at every depth, so every replayed
     prefix is fed in full: its [replay_steps_saved] IS the baseline's
     total replay tax. *)
  let s1 =
    Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:16 ~checkpoint_stride:1 ()
  in
  let replay_tax = s1.Explore.replay_steps_saved in
  Alcotest.(check bool) "the tax is real" true (replay_tax > 0);
  let s4 =
    Explore.run ~mk:(mk_mutex (module Tas)) ~max_steps:16 ~checkpoint_stride:4 ()
  in
  Alcotest.(check bool) "stride 4 saves > 50% of the replay tax" true
    (2 * s4.Explore.replay_steps_saved > replay_tax)

let prop_replay_configs_agree =
  let open QCheck2 in
  let gen =
    Gen.(
      pair
        (list_size (2 -- 3) (list_size (1 -- 2) (int_bound 1)))
        (int_bound (List.length replay_configs - 1)))
  in
  let print (progs, ci) =
    let label, _, _, _ = List.nth replay_configs ci in
    label ^ ": "
    ^ String.concat " | "
        (List.map
           (fun p -> String.concat ";" (List.map string_of_int p))
           progs)
  in
  Test.make ~count:25
    ~name:"pooling/checkpointing/fusion do not change exploration" ~print gen
    (fun (progs, ci) ->
      let _, pool, stride, fuse = List.nth replay_configs ci in
      let nprocs = List.length progs in
      let mk () =
        let m = Machine.create ~nprocs () in
        let cells =
          [|
            Machine.alloc m ~name:"a" (Value.Int 0);
            Machine.alloc m ~name:"b" (Value.Int 0);
          |]
        in
        List.iteri
          (fun pid prog ->
            Machine.spawn m pid (fun () ->
                List.iter
                  (fun obj ->
                    let c = cells.(obj) in
                    let v = Proc.read_int c in
                    Proc.write c (Value.Int (v + 1)))
                  prog))
          progs;
        m
      in
      List.for_all
        (fun mode ->
          let base =
            Explore.run ~mk ~max_steps:14 ~max_paths:30_000 ~mode ~pool:false
              ~checkpoint_stride:0 ~fuse:false ()
          in
          let s =
            Explore.run ~mk ~max_steps:14 ~max_paths:30_000 ~mode ~pool
              ~checkpoint_stride:stride ~fuse ()
          in
          scrub_replay s = scrub_replay base)
        [ Explore.Naive; Explore.Dpor ])

let test_progress_callback () =
  let calls = ref 0 in
  let last = ref 0 in
  let s =
    Explore.run
      ~mk:(mk_mutex (module Tas))
      ~max_steps:24
      ~progress:(fun st ->
        incr calls;
        let leaves = st.Explore.paths + st.Explore.cut in
        Alcotest.(check bool) "monotone" true (leaves > !last);
        last := leaves)
      ~progress_every:1000 ()
  in
  Alcotest.(check int) "called once per 1000 leaves" 4 !calls;
  Alcotest.(check int) "all leaves admitted" 4096
    (s.Explore.paths + s.Explore.cut)

(* ------------------------------------------------------------------ *)
(* Parallel exploration across domains.                                 *)
(* ------------------------------------------------------------------ *)

let test_domains_naive_partition () =
  let mk = mk_mutex (module Ticket) in
  let s1 = Explore.run ~mk ~final:(counter_is 2) ~max_steps:24 () in
  let s2 =
    Explore.run ~mk ~final:(counter_is 2) ~max_steps:24 ~domains:2 ()
  in
  (* replays/steps are bookkeeping of the traversal itself, and the
     frontier split legitimately replays more prefixes than one DFS *)
  let scrub s =
    { s with Explore.replays = 0; steps = 0; replay_steps_saved = 0 }
  in
  Alcotest.(check bool) "two domains visit the same stats" true
    (scrub s1 = scrub s2)

let test_domains_dpor () =
  let mk = mk_mutex (module Ticket) ~nprocs:3 in
  let d1 =
    Explore.run ~mk ~final:(counter_is 3) ~max_steps:36
      ~mode:Explore.Dpor ()
  in
  let run3 () =
    Explore.run ~mk ~final:(counter_is 3) ~max_steps:36 ~mode:Explore.Dpor
      ~domains:3 ()
  in
  let a = run3 () and b = run3 () in
  Alcotest.(check bool) "parallel dpor is deterministic" true (a = b);
  Alcotest.(check bool) "search completed" false a.Explore.exhausted;
  Alcotest.(check bool) "same verdict as one domain"
    (d1.Explore.violations > 0)
    (a.Explore.violations > 0)

(* Three-process mutual exclusion is out of reach for the naive search at
   these depths; the reduction brings it into budget. *)
let test_three_process_mutex_dpor () =
  List.iter
    (fun ((module L : Mutex_intf.S), max_steps) ->
      let s =
        Explore.run
          ~mk:(mk_mutex (module L) ~nprocs:3)
          ~final:(counter_is 3) ~max_steps ~max_paths:2_000_000
          ~mode:Explore.Dpor ~domains:3 ()
      in
      Alcotest.(check bool) (L.name ^ ": search completed") false
        s.Explore.exhausted;
      Alcotest.(check int)
        (Printf.sprintf "%s: no violation in %d complete paths (%d cut)"
           L.name s.Explore.paths s.Explore.cut)
        0 s.Explore.violations)
    [ ((module Ticket), 36); ((module Mcs), 40) ]

let lock_cases =
  List.map
    (fun ((module L : Mutex_intf.S), max_steps, max_paths) ->
      Alcotest.test_case L.name `Slow
        (explore_lock ~max_steps ~max_paths (module L)))
    [
      ((module Tas), 24, 1_000_000);
      ((module Ttas), 24, 1_000_000);
      ((module Ticket), 24, 1_000_000);
      ((module Anderson), 24, 1_000_000);
      ((module Mcs), 24, 1_000_000);
      ((module Clh), 24, 1_000_000);
      ((module Tournament), 22, 1_000_000);
      ((module Yang_anderson), 18, 2_000_000);
      ((module Mutex_registry.Tm_oneshot), 20, 2_000_000);
      ((module Mutex_registry.Tm_llsc), 20, 2_000_000);
    ]

(* OSTM's commit protocol (descriptor set-up plus helping) makes even the
   tiny scenarios' interleaving spaces exceed the exhaustive path budget, so
   its schedule coverage is a deep random sweep instead: thousands of seeded
   schedules over both scenarios, every history checked for opacity. *)
let ostm_random_sweep () =
  for seed = 1 to 1500 do
    let m = mk_tm (module Ptm_tms.Ostm) () in
    Sched.random ~seed m;
    Machine.check_crashes m;
    if not (opaque_final m) then
      Alcotest.failf "ostm two-object scenario, seed %d: not opaque" seed;
    let m = mk_single_object (module Ptm_tms.Ostm) () in
    Sched.random ~seed m;
    Machine.check_crashes m;
    let h = History.of_trace (Machine.trace m) in
    if not (Checker.is_ok (Checker.opaque h)) then
      Alcotest.failf "ostm single-object scenario, seed %d: not opaque" seed;
    if not (some_commit m) then
      Alcotest.failf
        "ostm single-object scenario, seed %d: no transaction committed" seed
  done

(* Bakery's entry section is too long for exhaustive exploration within the
   path budget; deep random sweep instead (the standard mutex suite also
   covers it). *)
let bakery_random_sweep () =
  for seed = 1 to 1000 do
    List.iter
      (fun nprocs ->
        match
          Harness.run (module Bakery) ~nprocs ~rounds:2 ~schedule:(`Random seed)
            ()
        with
        | _ -> ()
        | exception Harness.Mutual_exclusion_violation msg ->
            Alcotest.failf "bakery seed %d n=%d: %s" seed nprocs msg
        | exception Sched.Out_of_steps ->
            Alcotest.failf "bakery seed %d n=%d: no progress" seed nprocs)
      [ 2; 3; 4 ]
  done

let tm_cases =
  List.map
    (fun (module T : Tm_intf.S) ->
      if T.name = "ostm" then
        Alcotest.test_case "ostm (random sweep)" `Slow ostm_random_sweep
      else Alcotest.test_case T.name `Slow (explore_tm (module T)))
    Ptm_tms.Registry.all

let strong_cases =
  List.map
    (fun (module T : Tm_intf.S) ->
      Alcotest.test_case T.name `Slow (explore_strongly_progressive (module T)))
    [
      (module Ptm_tms.Oneshot : Tm_intf.S);
      (module Ptm_tms.Oneshot_llsc : Tm_intf.S);
      (module Ptm_tms.Sgl : Tm_intf.S);
      (module Ptm_tms.Dstm : Tm_intf.S);
    ]
  @ [
      Alcotest.test_case "visread upgrade all-abort" `Quick
        test_visread_upgrade_all_abort;
    ]

let () =
  Alcotest.run "explore"
    [
      ( "mutex-all-schedules",
        lock_cases
        @ [ Alcotest.test_case "bakery (random sweep)" `Slow bakery_random_sweep ]
      );
      ("tm-opacity-all-schedules", tm_cases);
      ("strong-progressiveness-all-schedules", strong_cases);
      ( "detection",
        [
          Alcotest.test_case "broken lock found" `Quick test_detects_broken;
          Alcotest.test_case "racy lock found" `Quick test_detects_racy;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "dpor-differential",
        [
          Alcotest.test_case "undolog aba >= 5x reduction" `Slow
            test_undolog_aba_reduction;
        ]
        @ dpor_tm_cases
        @ [
            Alcotest.test_case "ostm (shallow differential)" `Slow
              test_ostm_differential;
            Alcotest.test_case "ostm (dpor, full depth)" `Slow
              test_ostm_dpor_full_depth;
          ] );
      ( "dpor-single-object",
        dpor_single_object_cases
        @ [
            Alcotest.test_case "broken lock" `Quick test_differential_broken;
            Alcotest.test_case "racy lock" `Quick test_differential_racy;
            Alcotest.test_case "lossy counter" `Quick test_differential_lossy;
            QCheck_alcotest.to_alcotest prop_dpor_matches_naive;
          ] );
      ( "budget",
        [
          Alcotest.test_case "exact leaf count admitted" `Quick
            test_budget_exact;
          Alcotest.test_case "strict bound" `Quick test_budget_strict;
          Alcotest.test_case "witness preserved under budget" `Quick
            test_budget_preserves_witness;
          Alcotest.test_case "progress callback" `Quick
            test_progress_callback;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "sink invariance on mutex fixtures" `Quick
            test_sink_invariance;
          QCheck_alcotest.to_alcotest prop_sinks_agree;
          Alcotest.test_case "dpor counts pinned" `Quick
            test_dpor_counts_pinned;
          Alcotest.test_case "more than 62 procs rejected" `Quick
            test_max_procs_rejected;
          Alcotest.test_case "replays counted" `Quick test_replays_counted;
        ] );
      ( "replay",
        [
          Alcotest.test_case "pool/ckpt/fusion differential" `Quick
            test_replay_differential;
          Alcotest.test_case "defaults match baseline" `Quick
            test_replay_defaults_pinned;
          Alcotest.test_case "checkpoints cover >50% of the tax" `Quick
            test_checkpoint_savings;
          QCheck_alcotest.to_alcotest prop_replay_configs_agree;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "naive partition matches" `Quick
            test_domains_naive_partition;
          Alcotest.test_case "dpor across domains" `Quick test_domains_dpor;
          Alcotest.test_case "three-process mutexes" `Slow
            test_three_process_mutex_dpor;
        ] );
    ]
